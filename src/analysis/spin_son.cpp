#include "analysis/spin_son.hpp"

#include <algorithm>

#include "analysis/rta_common.hpp"

#include "util/fixed_point.hpp"

namespace dpcp {

Time SpinSonAnalysis::spin_delay(const TaskSet& ts, const Partition& part,
                                 int task, ResourceId q) {
  const DagTask& ti = ts.task(task);
  Time delay = 0;
  // FIFO: one in-flight request per contending processor can be ahead.
  for (int j = 0; j < ts.size(); ++j) {
    if (j == task) continue;
    const auto& use = ts.task(j).usage(q);
    if (!use.used()) continue;
    const int slots = std::min(part.cluster_size(j), use.max_requests);
    delay += static_cast<Time>(slots) * use.cs_length;
  }
  const auto& own = ti.usage(q);
  if (own.max_requests > 1) {
    const int slots =
        std::min(part.cluster_size(task) - 1, own.max_requests - 1);
    if (slots > 0) delay += static_cast<Time>(slots) * own.cs_length;
  }
  return delay;
}

namespace {

class SpinSonPrepared final : public PreparedAnalysis {
 public:
  explicit SpinSonPrepared(AnalysisSession& session)
      : PreparedAnalysis(session),
        statics_(static_cast<std::size_t>(ts_.size())),
        state_(static_cast<std::size_t>(ts_.size())) {
    // Contender sets feed partition_inputs() from the first bind() on, so
    // they are built eagerly (cheap: usage-table scans only).
    for (int i = 0; i < ts_.size(); ++i) build_statics(i);
  }

  std::optional<Time> wcrt(int task,
                           const std::vector<Time>& hint) override {
    const DagTask& ti = ts_.task(task);
    const TaskStatics& ps = statics_[static_cast<std::size_t>(task)];
    State& st = state_[static_cast<std::size_t>(task)];
    if (st.dirty) {
      st.mi = partition().cluster_size(task);
      // Per-job spin on l_q is bounded by BOTH (i) the per-request FIFO
      // bound N_{i,q} * spin_delay (each request waits for at most one
      // in-flight request per contending processor) and (ii) the remote
      // critical-section work actually released within the response window
      // (a job cannot busy-wait on work that does not exist) -- the same
      // min() structure as Lemma 3's eps/zeta.  The joint N^lambda maximum
      // puts all spin on the analysed path (coefficient 1 > 1/m), so spin
      // inflates the path only.
      st.fifo_bound.clear();
      for (std::size_t k = 0; k < ps.q.size(); ++k)
        st.fifo_bound.push_back(
            static_cast<Time>(ps.max_requests[k]) *
            SpinSonAnalysis::spin_delay(ts_, partition(), task, ps.q[k]));
      st.preempt.assign(preemption_demand(ts_, partition(), task),
                        session_.periods());
      st.arrival_blocking = 0;
      if (!st.preempt.empty() || partition().task_shares_processor(task)) {
        // Sec. VI shared processors: spinning and critical sections are
        // non-preemptable on the runtime (else lock holders deadlock), so
        // (i) a higher-priority co-located preemptor occupies the shared
        // processor for its busy-wait time too -- inflate its preemption
        // demand by its worst-case per-job spin; (ii) one already-started
        // lower-priority spin+CS chunk can block tau_i at arrival.
        for (std::size_t k = 0; k < st.preempt.size(); ++k)
          st.preempt.demand[k] += job_spin_bound(st.preempt.task[k]);
        st.arrival_blocking = max_lower_priority_chunk(task);
      }
      st.dirty = false;
    }

    const Time lstar = ti.longest_path_length();
    const Time base = lstar + div_ceil(ti.wcet() - lstar, st.mi);
    auto f = [&](Time r) {
      Time spin = 0;
      for (std::size_t k = 0; k < ps.q.size(); ++k) {
        const std::uint32_t cb = ps.coff[k], ce = ps.coff[k + 1];
        const Time wd =
            ps.own_window[k] +
            window_demand(ps.contenders.task.data() + cb,
                          ps.contenders.demand.data() + cb,
                          ps.contenders.period.data() + cb, ce - cb, hint, r);
        spin += std::min(st.fifo_bound[k], wd);
      }
      return base + st.arrival_blocking + spin +
             window_demand(st.preempt, hint, r);
    };
    return solve_fixed_point(f, base, ti.deadline()).value;
  }

 protected:
  void partition_inputs(const Partition& part, int task,
                        std::vector<Time>* out) const override {
    // The FIFO slot counts read the cluster sizes of every task contending
    // for a resource tau_i uses; preemption reads the co-hosted tasks.
    append_cluster(part, task, out);
    append_cohosted(part, task, out);
    const TaskStatics& ps = statics_[static_cast<std::size_t>(task)];
    out->push_back(static_cast<Time>(ps.contender_tasks.size()));
    for (int j : ps.contender_tasks) out->push_back(part.cluster_size(j));
    // User-set epochs of tau_i's own resources: two contender sets with
    // equal sizes and cluster sizes can still carry different demand after
    // a session mutation swaps one contender for another.
    for (ResourceId q : session_.used_resources(task))
      append_users_epoch(q, out);
    // On shared processors the blocking/preemption terms evaluate
    // spin_delay() of co-located tasks, which reads the cluster size of
    // *their* contenders -- conservatively fingerprint every cluster size
    // (and, same conservatism, every user-set epoch).
    if (part.task_shares_processor(task)) {
      out->push_back(static_cast<Time>(ts_.size()));
      for (int j = 0; j < ts_.size(); ++j)
        out->push_back(part.cluster_size(j));
      for (ResourceId q = 0; q < part.num_resources(); ++q)
        append_users_epoch(q, out);
    }
  }

  void invalidate(int task) override {
    state_[static_cast<std::size_t>(task)].dirty = true;
  }

  void on_taskset_changed(bool /*remap*/) override {
    const std::size_t n = static_cast<std::size_t>(ts_.size());
    statics_.assign(n, TaskStatics{});
    state_.assign(n, State{});
    // Rebuild eagerly: partition_inputs() above serializes the contender
    // sets on the very next bind().
    for (int i = 0; i < ts_.size(); ++i) build_statics(i);
  }

 private:
  /// Partition-independent per-resource data of one task's analysis, in
  /// SoA layout (index = position in used_resources() order).  The
  /// contender lists of all resources live back-to-back in one DemandSoA;
  /// coff[k]..coff[k+1] delimits resource k's slice.
  struct TaskStatics {
    std::vector<ResourceId> q;
    std::vector<int> max_requests;
    /// Own concurrent requests spun on once each (window-side term).
    std::vector<Time> own_window;
    std::vector<std::uint32_t> coff;  // contender ranges, q.size()+1 entries
    DemandSoA contenders;
    /// Sorted union of tasks sharing any resource with tau_i.
    std::vector<int> contender_tasks;
  };
  struct State {
    bool dirty = true;
    int mi = 1;
    std::vector<Time> fifo_bound;  // N_{i,q} * spin_delay, per resource
    /// Co-located higher-priority (task, C_j + per-job spin) demand.
    DemandSoA preempt;
    /// One non-preemptable lower-priority spin+CS chunk (Sec. VI).
    Time arrival_blocking = 0;
  };

  /// Worst-case processor time task j busy-waits per job: one FIFO spin
  /// bound per request, summed over its resources.
  Time job_spin_bound(int j) const {
    Time total = 0;
    for (ResourceId q : session_.used_resources(j))
      total += static_cast<Time>(ts_.task(j).usage(q).max_requests) *
               SpinSonAnalysis::spin_delay(ts_, partition(), j, q);
    return total;
  }

  /// Largest single non-preemptable chunk (spin delay + critical section
  /// of one request) of a lower-priority task co-located with tau_i.  At
  /// most one such chunk can be in flight when a job of tau_i arrives,
  /// and none can start while tau_i has ready work.
  Time max_lower_priority_chunk(int task) const {
    Time worst = 0;
    std::vector<char> seen(static_cast<std::size_t>(ts_.size()), 0);
    for (ProcessorId p : partition().cluster(task)) {
      for (int j : partition().tasks_on_processor(p)) {
        if (j == task || seen[static_cast<std::size_t>(j)]) continue;
        seen[static_cast<std::size_t>(j)] = 1;
        if (ts_.task(j).priority() >= ts_.task(task).priority()) continue;
        for (ResourceId q : session_.used_resources(j))
          worst = std::max(
              worst, SpinSonAnalysis::spin_delay(ts_, partition(), j, q) +
                         ts_.task(j).usage(q).cs_length);
      }
    }
    return worst;
  }

  void build_statics(int task) {
    TaskStatics& ps = statics_[static_cast<std::size_t>(task)];
    const DagTask& ti = ts_.task(task);
    const Time* periods = session_.periods();
    std::vector<char> seen(static_cast<std::size_t>(ts_.size()), 0);
    ps.coff.push_back(0);
    for (ResourceId q : session_.used_resources(task)) {
      ps.q.push_back(q);
      ps.max_requests.push_back(ti.usage(q).max_requests);
      ps.own_window.push_back(
          static_cast<Time>(std::max(0, ti.usage(q).max_requests - 1)) *
          ti.usage(q).cs_length);
      for (int j = 0; j < ts_.size(); ++j) {
        if (j == task) continue;
        const auto& use = ts_.task(j).usage(q);
        if (!use.used()) continue;
        ps.contenders.add(j, use.demand(),
                          periods[static_cast<std::size_t>(j)]);
        if (!seen[static_cast<std::size_t>(j)]) {
          seen[static_cast<std::size_t>(j)] = 1;
          ps.contender_tasks.push_back(j);
        }
      }
      ps.coff.push_back(static_cast<std::uint32_t>(ps.contenders.size()));
    }
    std::sort(ps.contender_tasks.begin(), ps.contender_tasks.end());
  }

  std::vector<TaskStatics> statics_;
  std::vector<State> state_;
};

}  // namespace

std::unique_ptr<PreparedAnalysis> SpinSonAnalysis::prepare(
    AnalysisSession& session) const {
  return std::make_unique<SpinSonPrepared>(session);
}

}  // namespace dpcp
