#include "analysis/spin_son.hpp"

#include <algorithm>

#include "analysis/rta_common.hpp"

#include "util/fixed_point.hpp"

namespace dpcp {

Time SpinSonAnalysis::spin_delay(const TaskSet& ts, const Partition& part,
                                 int task, ResourceId q) {
  const DagTask& ti = ts.task(task);
  Time delay = 0;
  // FIFO: one in-flight request per contending processor can be ahead.
  for (int j = 0; j < ts.size(); ++j) {
    if (j == task) continue;
    const auto& use = ts.task(j).usage(q);
    if (!use.used()) continue;
    const int slots = std::min(part.cluster_size(j), use.max_requests);
    delay += static_cast<Time>(slots) * use.cs_length;
  }
  const auto& own = ti.usage(q);
  if (own.max_requests > 1) {
    const int slots =
        std::min(part.cluster_size(task) - 1, own.max_requests - 1);
    if (slots > 0) delay += static_cast<Time>(slots) * own.cs_length;
  }
  return delay;
}

namespace {

class SpinSonPrepared final : public PreparedAnalysis {
 public:
  explicit SpinSonPrepared(AnalysisSession& session)
      : PreparedAnalysis(session),
        statics_(static_cast<std::size_t>(ts_.size())),
        state_(static_cast<std::size_t>(ts_.size())) {
    // Contender sets feed partition_inputs() from the first bind() on, so
    // they are built eagerly (cheap: usage-table scans only).
    for (int i = 0; i < ts_.size(); ++i) build_statics(i);
  }

  std::optional<Time> wcrt(int task,
                           const std::vector<Time>& hint) override {
    const DagTask& ti = ts_.task(task);
    const TaskStatics& ps = prepared_statics(task);
    State& st = state_[static_cast<std::size_t>(task)];
    if (st.dirty) {
      st.mi = partition().cluster_size(task);
      // Per-job spin on l_q is bounded by BOTH (i) the per-request FIFO
      // bound N_{i,q} * spin_delay (each request waits for at most one
      // in-flight request per contending processor) and (ii) the remote
      // critical-section work actually released within the response window
      // (a job cannot busy-wait on work that does not exist) -- the same
      // min() structure as Lemma 3's eps/zeta.  The joint N^lambda maximum
      // puts all spin on the analysed path (coefficient 1 > 1/m), so spin
      // inflates the path only.
      st.fifo_bound.clear();
      for (const ResourceStatic& rs : ps.resources)
        st.fifo_bound.push_back(
            static_cast<Time>(rs.max_requests) *
            SpinSonAnalysis::spin_delay(ts_, partition(), task, rs.q));
      st.preempt_demand = preemption_demand(ts_, partition(), task);
      st.arrival_blocking = 0;
      if (!st.preempt_demand.empty() ||
          partition().task_shares_processor(task)) {
        // Sec. VI shared processors: spinning and critical sections are
        // non-preemptable on the runtime (else lock holders deadlock), so
        // (i) a higher-priority co-located preemptor occupies the shared
        // processor for its busy-wait time too -- inflate its preemption
        // demand by its worst-case per-job spin; (ii) one already-started
        // lower-priority spin+CS chunk can block tau_i at arrival.
        for (auto& [j, wcet] : st.preempt_demand)
          wcet += job_spin_bound(j);
        st.arrival_blocking = max_lower_priority_chunk(task);
      }
      st.dirty = false;
    }

    const Time lstar = ti.longest_path_length();
    const Time base = lstar + div_ceil(ti.wcet() - lstar, st.mi);
    auto f = [&](Time r) {
      Time spin = 0;
      for (std::size_t k = 0; k < ps.resources.size(); ++k) {
        const ResourceStatic& rs = ps.resources[k];
        Time window_demand = rs.own_window;
        for (const auto& [j, demand] : rs.contenders)
          window_demand += eta(r, hint[static_cast<std::size_t>(j)],
                               ts_.task(j).period()) *
                           demand;
        spin += std::min(st.fifo_bound[k], window_demand);
      }
      return base + st.arrival_blocking + spin +
             preemption(st.preempt_demand, ts_, hint, r);
    };
    return solve_fixed_point(f, base, ti.deadline()).value;
  }

 protected:
  void partition_inputs(const Partition& part, int task,
                        std::vector<Time>* out) const override {
    // The FIFO slot counts read the cluster sizes of every task contending
    // for a resource tau_i uses; preemption reads the co-hosted tasks.
    append_cluster(part, task, out);
    append_cohosted(part, task, out);
    const TaskStatics& ps = statics_[static_cast<std::size_t>(task)];
    out->push_back(static_cast<Time>(ps.contender_tasks.size()));
    for (int j : ps.contender_tasks) out->push_back(part.cluster_size(j));
    // On shared processors the blocking/preemption terms evaluate
    // spin_delay() of co-located tasks, which reads the cluster size of
    // *their* contenders -- conservatively fingerprint every cluster size.
    if (part.task_shares_processor(task)) {
      out->push_back(static_cast<Time>(ts_.size()));
      for (int j = 0; j < ts_.size(); ++j)
        out->push_back(part.cluster_size(j));
    }
  }

  void invalidate(int task) override {
    state_[static_cast<std::size_t>(task)].dirty = true;
  }

 private:
  /// Partition-independent per-resource data of one task's analysis.
  struct ResourceStatic {
    ResourceId q = 0;
    int max_requests = 0;
    /// Own concurrent requests spun on once each (window-side term).
    Time own_window = 0;
    /// Every other user of l_q: (j, N*L), for the window-demand cap.
    std::vector<std::pair<int, Time>> contenders;
  };
  struct TaskStatics {
    bool ready = false;
    std::vector<ResourceStatic> resources;  // in used_resources() order
    /// Sorted union of tasks sharing any resource with tau_i.
    std::vector<int> contender_tasks;
  };
  struct State {
    bool dirty = true;
    int mi = 1;
    std::vector<Time> fifo_bound;  // N_{i,q} * spin_delay, per resource
    /// Co-located higher-priority (task, C_j + per-job spin) pairs.
    std::vector<std::pair<int, Time>> preempt_demand;
    /// One non-preemptable lower-priority spin+CS chunk (Sec. VI).
    Time arrival_blocking = 0;
  };

  const TaskStatics& prepared_statics(int task) const {
    return statics_[static_cast<std::size_t>(task)];
  }

  /// Worst-case processor time task j busy-waits per job: one FIFO spin
  /// bound per request, summed over its resources.
  Time job_spin_bound(int j) const {
    Time total = 0;
    for (ResourceId q : ts_.task(j).used_resources())
      total += static_cast<Time>(ts_.task(j).usage(q).max_requests) *
               SpinSonAnalysis::spin_delay(ts_, partition(), j, q);
    return total;
  }

  /// Largest single non-preemptable chunk (spin delay + critical section
  /// of one request) of a lower-priority task co-located with tau_i.  At
  /// most one such chunk can be in flight when a job of tau_i arrives,
  /// and none can start while tau_i has ready work.
  Time max_lower_priority_chunk(int task) const {
    Time worst = 0;
    std::vector<char> seen(static_cast<std::size_t>(ts_.size()), 0);
    for (ProcessorId p : partition().cluster(task)) {
      for (int j : partition().tasks_on_processor(p)) {
        if (j == task || seen[static_cast<std::size_t>(j)]) continue;
        seen[static_cast<std::size_t>(j)] = 1;
        if (ts_.task(j).priority() >= ts_.task(task).priority()) continue;
        for (ResourceId q : ts_.task(j).used_resources())
          worst = std::max(
              worst, SpinSonAnalysis::spin_delay(ts_, partition(), j, q) +
                         ts_.task(j).usage(q).cs_length);
      }
    }
    return worst;
  }

  void build_statics(int task) {
    TaskStatics& ps = statics_[static_cast<std::size_t>(task)];
    const DagTask& ti = ts_.task(task);
    std::vector<char> seen(static_cast<std::size_t>(ts_.size()), 0);
    for (ResourceId q : ti.used_resources()) {
      ResourceStatic rs;
      rs.q = q;
      rs.max_requests = ti.usage(q).max_requests;
      rs.own_window =
          static_cast<Time>(std::max(0, ti.usage(q).max_requests - 1)) *
          ti.usage(q).cs_length;
      for (int j = 0; j < ts_.size(); ++j) {
        if (j == task) continue;
        const auto& use = ts_.task(j).usage(q);
        if (!use.used()) continue;
        rs.contenders.emplace_back(j, use.demand());
        if (!seen[static_cast<std::size_t>(j)]) {
          seen[static_cast<std::size_t>(j)] = 1;
          ps.contender_tasks.push_back(j);
        }
      }
      ps.resources.push_back(std::move(rs));
    }
    std::sort(ps.contender_tasks.begin(), ps.contender_tasks.end());
    ps.ready = true;
  }

  std::vector<TaskStatics> statics_;
  std::vector<State> state_;
};

}  // namespace

std::unique_ptr<PreparedAnalysis> SpinSonAnalysis::prepare(
    AnalysisSession& session) const {
  return std::make_unique<SpinSonPrepared>(session);
}

}  // namespace dpcp
