#include "analysis/spin_son.hpp"

#include <algorithm>

#include "analysis/rta_common.hpp"

#include "util/fixed_point.hpp"

namespace dpcp {

Time SpinSonAnalysis::spin_delay(const TaskSet& ts, const Partition& part,
                                 int task, ResourceId q) {
  const DagTask& ti = ts.task(task);
  Time delay = 0;
  // FIFO: one in-flight request per contending processor can be ahead.
  for (int j = 0; j < ts.size(); ++j) {
    if (j == task) continue;
    const auto& use = ts.task(j).usage(q);
    if (!use.used()) continue;
    const int slots = std::min(part.cluster_size(j), use.max_requests);
    delay += static_cast<Time>(slots) * use.cs_length;
  }
  const auto& own = ti.usage(q);
  if (own.max_requests > 1) {
    const int slots =
        std::min(part.cluster_size(task) - 1, own.max_requests - 1);
    if (slots > 0) delay += static_cast<Time>(slots) * own.cs_length;
  }
  return delay;
}

std::optional<Time> SpinSonAnalysis::wcrt(const TaskSet& ts,
                                          const Partition& part, int task,
                                          const std::vector<Time>& hint) const {
  const DagTask& ti = ts.task(task);
  const int mi = part.cluster_size(task);
  const Time lstar = ti.longest_path_length();

  // Per-job spin on l_q is bounded by BOTH (i) the per-request FIFO bound
  // N_{i,q} * spin_delay (each request waits for at most one in-flight
  // request per contending processor) and (ii) the remote critical-section
  // work actually released within the response window (a job cannot
  // busy-wait on work that does not exist) -- the same min() structure as
  // Lemma 3's eps/zeta.  The joint N^lambda maximum puts all spin on the
  // analysed path (coefficient 1 > 1/m), so spin inflates the path only.
  std::vector<std::pair<ResourceId, Time>> per_request;  // (q, N*S)
  for (ResourceId q : ti.used_resources())
    per_request.emplace_back(
        q, static_cast<Time>(ti.usage(q).max_requests) *
               spin_delay(ts, part, task, q));

  const Time base = lstar + div_ceil(ti.wcet() - lstar, mi);
  const auto demand = preemption_demand(ts, part, task);
  auto f = [&](Time r) {
    Time spin = 0;
    for (const auto& [q, fifo_bound] : per_request) {
      Time window_demand = 0;
      for (int j = 0; j < ts.size(); ++j) {
        if (j == task) continue;
        const auto& use = ts.task(j).usage(q);
        if (!use.used()) continue;
        window_demand += eta(r, hint[static_cast<std::size_t>(j)],
                             ts.task(j).period()) *
                         use.demand();
      }
      // Own concurrent requests can also be spun on, once each.
      window_demand +=
          static_cast<Time>(std::max(0, ti.usage(q).max_requests - 1)) *
          ti.usage(q).cs_length;
      spin += std::min(fifo_bound, window_demand);
    }
    return base + spin + preemption(demand, ts, hint, r);
  };
  return solve_fixed_point(f, base, ti.deadline()).value;
}

}  // namespace dpcp
