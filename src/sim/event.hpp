// Event taxonomy of the discrete-event simulator core.
//
// Only *time-advancing* occurrences live on the global EventQueue: job
// releases and segment completions (the two points where the simulated
// clock can move).  Everything that happens as a same-timestamp cascade of
// those — vertex dispatch, lock grant/release, FIFO handoff, preemption —
// is resolved immediately by the protocol state machine and recorded in
// the trace (TraceKind), never queued: queuing zero-delay events would
// only re-order the cascade and make the two clock backends harder to
// prove equivalent.  Future event kinds that *do* advance time (e.g. the
// ROADMAP's interconnect transit latency for remote DPCP requests) extend
// this enum.
#pragma once

#include <cstdint>

#include "util/time.hpp"

namespace dpcp {

enum class SimEventKind {
  /// A task releases its next job.  `subject` is the task index.
  kJobRelease,
  /// The segment running on a processor finishes.  `subject` is the
  /// processor; `token` must match the processor's current dispatch token
  /// or the event is stale (the occupant was preempted or handed off
  /// since it was scheduled) and is ignored.
  kSegmentDone,
};

const char* sim_event_kind_name(SimEventKind kind);

struct SimEvent {
  Time time = 0;
  /// Stable tie-break: events scheduled earlier fire earlier at equal
  /// times.  Assigned by EventQueue::schedule(), strictly increasing over
  /// the queue's lifetime.
  std::int64_t seq = 0;
  SimEventKind kind = SimEventKind::kJobRelease;
  int subject = 0;
  std::uint64_t token = 0;
};

/// Strict weak ordering "a fires after b": later time first, then later
/// schedule order.  The deterministic tie-break rule of the whole core —
/// (time, seq) — lives here and nowhere else.
struct SimEventAfter {
  bool operator()(const SimEvent& a, const SimEvent& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

}  // namespace dpcp
