// Global time-ordered event queue of the simulator core.
//
// A thin, deterministic wrapper over a binary heap: events pop in
// (time, seq) order, where seq is the schedule order — so two events
// scheduled for the same instant always fire in the order the protocol
// machine created them, independent of heap internals.  Both clock
// backends (src/sim/simulator.cpp) drain one EventQueue: the event
// backend jumps the clock to next_time(), the quantum backend walks the
// clock densely up to it.
#pragma once

#include <cassert>
#include <cstdint>
#include <queue>
#include <vector>

#include "sim/event.hpp"

namespace dpcp {

class EventQueue {
 public:
  /// Enqueues an event at time `t`, assigning the next sequence number.
  /// Scheduling order is the tie-break at equal times.
  void schedule(Time t, SimEventKind kind, int subject,
                std::uint64_t token = 0) {
    heap_.push(SimEvent{t, next_seq_++, kind, subject, token});
  }

  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }

  /// Earliest pending event (by the (time, seq) order).
  const SimEvent& peek() const {
    assert(!heap_.empty());
    return heap_.top();
  }
  Time next_time() const { return peek().time; }

  SimEvent pop() {
    assert(!heap_.empty());
    const SimEvent e = heap_.top();
    heap_.pop();
    return e;
  }

  /// Total events ever scheduled (monotone; equals the last assigned
  /// sequence number).
  std::int64_t scheduled() const { return next_seq_; }

 private:
  std::priority_queue<SimEvent, std::vector<SimEvent>, SimEventAfter> heap_;
  std::int64_t next_seq_ = 0;
};

}  // namespace dpcp
