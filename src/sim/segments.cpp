#include "sim/segments.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace dpcp {
namespace {

VertexPlan build_vertex_plan(const DagTask& task, VertexId x, double scale) {
  const Vertex& v = task.vertex(x);
  VertexPlan plan;

  // Gather this vertex's critical sections, round-robin over resources so
  // repeated requests to the same resource are spread out.
  std::vector<Segment> sections;
  std::vector<int> left(static_cast<std::size_t>(task.num_resources()), 0);
  int remaining = 0;
  for (ResourceId q = 0; q < task.num_resources(); ++q) {
    left[static_cast<std::size_t>(q)] = v.requests_to(q);
    remaining += v.requests_to(q);
  }
  while (remaining > 0) {
    for (ResourceId q = 0; q < task.num_resources(); ++q) {
      if (left[static_cast<std::size_t>(q)] == 0) continue;
      --left[static_cast<std::size_t>(q)];
      --remaining;
      sections.push_back(
          Segment{true, q, task.usage(q).cs_length});
    }
  }

  const Time noncrit = task.vertex_noncrit_wcet(x);
  assert(noncrit >= 0);
  const std::size_t slots = sections.size() + 1;
  const Time slice = noncrit / static_cast<Time>(slots);
  Time leftover = noncrit - slice * static_cast<Time>(slots);

  auto push_noncrit = [&](Time extra) {
    const Time len = slice + extra;
    if (len > 0) plan.segments.push_back(Segment{false, -1, len});
  };
  push_noncrit(leftover);  // fold the remainder into the first slice
  for (const Segment& cs : sections) {
    plan.segments.push_back(cs);
    push_noncrit(0);
  }

  if (scale < 1.0) {
    for (auto& s : plan.segments)
      s.length = std::max<Time>(
          s.critical ? 1 : 0,
          static_cast<Time>(std::llround(static_cast<double>(s.length) * scale)));
    plan.segments.erase(
        std::remove_if(plan.segments.begin(), plan.segments.end(),
                       [](const Segment& s) { return s.length == 0; }),
        plan.segments.end());
  }
  if (plan.segments.empty())
    plan.segments.push_back(Segment{false, -1, 1});  // keep vertex observable
  return plan;
}

}  // namespace

std::vector<TaskPlan> build_plans(const TaskSet& ts, double execution_scale) {
  assert(execution_scale > 0.0 && execution_scale <= 1.0);
  std::vector<TaskPlan> plans;
  plans.reserve(static_cast<std::size_t>(ts.size()));
  for (int i = 0; i < ts.size(); ++i) {
    const DagTask& t = ts.task(i);
    TaskPlan tp;
    tp.vertices.reserve(static_cast<std::size_t>(t.vertex_count()));
    for (VertexId x = 0; x < t.vertex_count(); ++x)
      tp.vertices.push_back(build_vertex_plan(t, x, execution_scale));
    plans.push_back(std::move(tp));
  }
  return plans;
}

}  // namespace dpcp
