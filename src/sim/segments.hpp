// Execution plans: the per-vertex alternation of non-critical segments and
// critical sections that the simulator executes.
//
// The analysis model only fixes, per vertex, the WCET C_{i,x} and the
// request counts N_{i,x,q}; the simulator needs a concrete layout.  We
// interleave the vertex's critical sections (round-robin over its
// resources, each of worst-case length L_{i,q}) with equal slices of its
// non-critical work.  Worst-case lengths make the simulated behaviour an
// admissible run of the analysed model, so every analysis bound must cover
// the observed response times.
#pragma once

#include <vector>

#include "model/taskset.hpp"
#include "util/rng.hpp"

namespace dpcp {

struct Segment {
  bool critical = false;
  ResourceId resource = -1;  // valid iff critical
  Time length = 0;
};

struct VertexPlan {
  std::vector<Segment> segments;
  Time total() const {
    Time t = 0;
    for (const auto& s : segments) t += s.length;
    return t;
  }
};

struct TaskPlan {
  std::vector<VertexPlan> vertices;
};

/// Builds worst-case plans for every task.  `execution_scale` in (0, 1]
/// shortens all segments proportionally (zero-length segments are dropped;
/// a vertex always keeps at least one segment so it remains observable).
std::vector<TaskPlan> build_plans(const TaskSet& ts,
                                  double execution_scale = 1.0);

}  // namespace dpcp
