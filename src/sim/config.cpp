#include "sim/config.hpp"

#include <sstream>

#include "sim/event.hpp"
#include "util/table.hpp"

namespace dpcp {

const char* sim_event_kind_name(SimEventKind kind) {
  switch (kind) {
    case SimEventKind::kJobRelease:  return "job-release";
    case SimEventKind::kSegmentDone: return "segment-done";
  }
  return "?";
}

const char* sim_backend_name(SimBackend backend) {
  switch (backend) {
    case SimBackend::kEvent:   return "event";
    case SimBackend::kQuantum: return "quantum";
  }
  return "?";
}

std::optional<SimBackend> parse_sim_backend(const std::string& token) {
  if (token == "event") return SimBackend::kEvent;
  if (token == "quantum") return SimBackend::kQuantum;
  return std::nullopt;
}

std::string trace_kind_name(TraceKind kind) {
  switch (kind) {
    case TraceKind::kJobRelease:     return "release";
    case TraceKind::kJobComplete:    return "job-done";
    case TraceKind::kVertexDispatch: return "run";
    case TraceKind::kVertexPreempt:  return "preempt";
    case TraceKind::kVertexComplete: return "vertex-done";
    case TraceKind::kSegmentEnd:     return "seg-end";
    case TraceKind::kRequestIssue:   return "request";
    case TraceKind::kRequestGrant:   return "grant";
    case TraceKind::kAgentDispatch:  return "agent-run";
    case TraceKind::kAgentComplete:  return "agent-done";
    case TraceKind::kAgentPreempt:   return "agent-preempt";
    case TraceKind::kLocalLock:      return "local-lock";
    case TraceKind::kLocalUnlock:    return "local-unlock";
  }
  return "?";
}

std::string trace_to_string(const std::vector<TraceEvent>& trace) {
  std::ostringstream os;
  for (const auto& e : trace) {
    os << strfmt("%10s  %-12s task=%d", format_time(e.time).c_str(),
                 trace_kind_name(e.kind).c_str(), e.task);
    if (e.job >= 0) os << " job=" << e.job;
    if (e.vertex >= 0) os << " v=" << e.vertex;
    if (e.processor >= 0) os << " proc=" << e.processor;
    if (e.resource >= 0) os << " res=" << e.resource;
    os << '\n';
  }
  return os.str();
}

}  // namespace dpcp
