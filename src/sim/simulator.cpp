#include "sim/simulator.hpp"

#include <algorithm>
#include <cassert>
#include <deque>
#include <map>
#include <queue>
#include <set>
#include <stdexcept>
#include <unordered_map>

#include "sim/event_queue.hpp"
#include "util/rng.hpp"

namespace dpcp {
namespace {

struct JobState {
  int task = -1;
  std::int64_t id = -1;
  Time arrival = 0;
  Time deadline = 0;
  int vertices_left = 0;
  std::vector<int> preds_left;
  std::vector<int> seg_index;       // per vertex
  std::vector<Time> seg_remaining;  // per vertex, of the current segment
  std::vector<std::vector<Segment>> segments;  // scaled copy of the plan
};

struct GlobalRequest {
  int id = -1;
  int task = -1;
  std::int64_t job = -1;
  int vertex = -1;
  ResourceId resource = -1;
  ProcessorId proc = -1;
  Time arrival = 0;
  Time remaining = 0;
  bool granted = false;
  bool finished = false;
  std::set<int> lower_blockers;  // distinct lower-priority blocking requests
};

struct LocalResource {
  bool locked = false;
  std::int64_t owner_job = -1;
  int owner_vertex = -1;
  std::deque<std::pair<std::int64_t, int>> waiters;  // (job, vertex) FIFO
};

enum class Occupant { kIdle, kVertex, kAgent, kSpinning };

struct Processor {
  // Tasks mapped to this processor, sorted by decreasing base priority.
  // Heavy (federated) processors carry exactly one task; shared light-task
  // processors (Sec. VI) may carry several, scheduled P-FP preemptively.
  std::vector<int> cluster_tasks;
  Occupant occ = Occupant::kIdle;
  std::int64_t job = -1;
  int vertex = -1;
  int request = -1;
  std::uint64_t token = 0;
  // Ready (granted, not running) agents: ordered by (prio desc, FIFO).
  std::set<std::tuple<int, std::int64_t, int>> ready_agents;
  // Suspended (not granted) requests: (prio desc, FIFO, id).
  std::set<std::tuple<int, std::int64_t, int>> suspended;
  // Ceilings of resources currently locked on this processor.
  std::multiset<int> locked_ceilings;
  // Live (issued, unfinished) requests targeting this processor.
  std::set<int> live_requests;
};

}  // namespace

struct Simulator::Impl {
  const TaskSet& ts;
  const Partition& part;
  const SimConfig& cfg;
  std::vector<TraceEvent>& trace;
  SimResult result;
  Rng rng;

  std::vector<TaskPlan> plans;
  EventQueue events;
  std::uint64_t next_token = 1;
  Time now = 0;

  std::vector<Processor> procs;
  std::unordered_map<std::int64_t, JobState> jobs;
  std::int64_t next_job_id = 0;
  std::vector<GlobalRequest> requests;
  std::map<ResourceId, LocalResource> local_res;
  std::vector<int> ceiling_of;    // per resource: max user base priority
  std::vector<bool> global_res;   // per resource
  std::vector<bool> global_locked;

  // Per task: RQ^N / RQ^L ready queues of (job, vertex).
  std::vector<std::deque<std::pair<std::int64_t, int>>> rqn, rql;
  // kSpinFifo only: vertices whose current segment is a critical section,
  // waiting for a processor to *request on*.  Under spin locks a request
  // joins the lock's FIFO queue only once its vertex occupies a processor
  // (acquire-on-dispatch): a task cannot reserve a queue slot without
  // burning processor time on it.  Decoupling the two (the pre-fix
  // behaviour) both underestimated spin interference and deadlocked on
  // shared light-task processors -- a waiter could hold a FIFO slot while
  // another vertex spun non-preemptively on the only processor the lock
  // holder could run on.
  std::vector<std::deque<std::pair<std::int64_t, int>>> rqs;
  // kSpinFifo only: where each currently-spinning vertex sits.
  std::map<std::pair<std::int64_t, int>, ProcessorId> spinning_at;
  std::vector<Time> response_sum;
  // Sec. VI: light tasks execute sequentially (at most one running vertex).
  std::vector<bool> is_light;
  std::vector<int> running_vertices;

  Impl(const TaskSet& t, const Partition& p, const SimConfig& c,
       std::vector<TraceEvent>& tr)
      : ts(t), part(p), cfg(c), trace(tr), rng(c.seed) {
    plans = build_plans(ts, cfg.execution_scale);
    procs.resize(static_cast<std::size_t>(part.num_processors()));
    for (int i = 0; i < ts.size(); ++i)
      for (ProcessorId pr : part.cluster(i))
        procs[static_cast<std::size_t>(pr)].cluster_tasks.push_back(i);
    for (auto& p : procs)
      std::sort(p.cluster_tasks.begin(), p.cluster_tasks.end(),
                [&](int a, int b) {
                  return ts.task(a).priority() > ts.task(b).priority();
                });
    is_light.resize(static_cast<std::size_t>(ts.size()));
    running_vertices.assign(static_cast<std::size_t>(ts.size()), 0);
    // Sequential ("light", Sec. VI) treatment follows the partition: a
    // task sharing a processor with another task runs one vertex at a
    // time; tasks with dedicated clusters run as parallel DAGs.
    for (int i = 0; i < ts.size(); ++i)
      is_light[static_cast<std::size_t>(i)] = part.task_shares_processor(i);
    rqn.resize(static_cast<std::size_t>(ts.size()));
    rql.resize(static_cast<std::size_t>(ts.size()));
    response_sum.assign(static_cast<std::size_t>(ts.size()), 0);
    result.task.resize(static_cast<std::size_t>(ts.size()));

    ceiling_of.resize(static_cast<std::size_t>(ts.num_resources()), INT32_MIN);
    global_res.resize(static_cast<std::size_t>(ts.num_resources()), false);
    global_locked.resize(static_cast<std::size_t>(ts.num_resources()), false);
    for (ResourceId q = 0; q < ts.num_resources(); ++q) {
      ceiling_of[static_cast<std::size_t>(q)] = ts.ceiling_priority(q);
      // Under FIFO spin locks every resource executes locally; only the
      // DPCP-p protocol distinguishes global resources.
      global_res[static_cast<std::size_t>(q)] =
          cfg.protocol == SimProtocol::kDpcpP && ts.is_global(q);
      if (!global_res[static_cast<std::size_t>(q)])
        local_res[q] = LocalResource{};
    }
    rqs.resize(static_cast<std::size_t>(ts.size()));
  }

  // ---- tracing ----------------------------------------------------------
  void record(TraceKind kind, int task, std::int64_t job, int vertex,
              int processor, int resource) {
    if (!cfg.record_trace) return;
    if (cfg.max_trace_entries > 0 &&
        static_cast<std::int64_t>(trace.size()) >= cfg.max_trace_entries)
      throw std::runtime_error(
          "simulator trace guard tripped: more than " +
          std::to_string(cfg.max_trace_entries) +
          " trace entries recorded (simulated time " + std::to_string(now) +
          " ns) -- raise SimConfig::max_trace_entries (0 = unlimited) or "
          "narrow the horizon");
    trace.push_back(TraceEvent{now, kind, task, job, vertex, processor,
                               resource});
  }

  // ---- event plumbing ---------------------------------------------------
  void push_event(Time t, SimEventKind kind, int subject,
                  std::uint64_t token = 0) {
    events.schedule(t, kind, subject, token);
  }

  // ---- job lifecycle ----------------------------------------------------
  void release_job(int task_idx) {
    const DagTask& t = ts.task(task_idx);
    JobState job;
    job.task = task_idx;
    job.id = next_job_id++;
    job.arrival = now;
    job.deadline = now + t.deadline();
    job.vertices_left = t.vertex_count();
    job.preds_left.resize(static_cast<std::size_t>(t.vertex_count()));
    job.seg_index.assign(static_cast<std::size_t>(t.vertex_count()), 0);
    job.seg_remaining.assign(static_cast<std::size_t>(t.vertex_count()), 0);
    job.segments.resize(static_cast<std::size_t>(t.vertex_count()));
    for (VertexId v = 0; v < t.vertex_count(); ++v) {
      job.preds_left[static_cast<std::size_t>(v)] =
          static_cast<int>(t.graph().predecessors(v).size());
      job.segments[static_cast<std::size_t>(v)] =
          plans[static_cast<std::size_t>(task_idx)]
              .vertices[static_cast<std::size_t>(v)]
              .segments;
    }
    const std::int64_t id = job.id;
    jobs.emplace(id, std::move(job));
    ++result.task[static_cast<std::size_t>(task_idx)].jobs_released;
    record(TraceKind::kJobRelease, task_idx, id, -1, -1, -1);

    for (VertexId v = 0; v < t.vertex_count(); ++v)
      if (jobs[id].preds_left[static_cast<std::size_t>(v)] == 0)
        vertex_ready(id, v);

    // Next arrival.
    Time next = now + t.period();
    if (cfg.release_jitter > 0)
      next += rng.uniform_int(0, cfg.release_jitter);
    if (next <= cfg.horizon) push_event(next, SimEventKind::kJobRelease, task_idx);
  }

  /// A vertex whose predecessors all finished becomes pending; route its
  /// current segment per the locking rules.
  void vertex_ready(std::int64_t job_id, int vertex) {
    JobState& job = jobs[job_id];
    auto& segs = job.segments[static_cast<std::size_t>(vertex)];
    const int si = job.seg_index[static_cast<std::size_t>(vertex)];
    if (si >= static_cast<int>(segs.size())) {
      vertex_complete(job_id, vertex);
      return;
    }
    const Segment& seg = segs[static_cast<std::size_t>(si)];
    job.seg_remaining[static_cast<std::size_t>(vertex)] = seg.length;
    if (seg.critical) {
      route_critical(job_id, vertex, seg.resource);
    } else {
      rqn[static_cast<std::size_t>(job.task)].emplace_back(job_id, vertex);
    }
  }

  /// Routes a vertex whose current segment is a critical section.  Under
  /// DPCP-p the request is issued immediately (suspension-based waiting:
  /// no processor is consumed while blocked).  Under FIFO spin locks the
  /// vertex queues for a processor first and requests when dispatched.
  void route_critical(std::int64_t job_id, int vertex, ResourceId q) {
    if (cfg.protocol == SimProtocol::kSpinFifo) {
      rqs[static_cast<std::size_t>(jobs[job_id].task)].emplace_back(job_id,
                                                                    vertex);
    } else {
      issue_request(job_id, vertex, q);
    }
  }

  void vertex_complete(std::int64_t job_id, int vertex) {
    JobState& job = jobs[job_id];
    const DagTask& t = ts.task(job.task);
    record(TraceKind::kVertexComplete, job.task, job_id, vertex, -1, -1);
    --job.vertices_left;
    for (VertexId w : t.graph().successors(vertex)) {
      if (--job.preds_left[static_cast<std::size_t>(w)] == 0)
        vertex_ready(job_id, w);
    }
    if (job.vertices_left == 0) {
      auto& st = result.task[static_cast<std::size_t>(job.task)];
      const Time resp = now - job.arrival;
      ++st.jobs_completed;
      st.max_response = std::max(st.max_response, resp);
      response_sum[static_cast<std::size_t>(job.task)] += resp;
      if (now > job.deadline) ++st.deadline_misses;
      record(TraceKind::kJobComplete, job.task, job_id, -1, -1, -1);
      jobs.erase(job_id);
    }
  }

  /// Advance past the just-finished segment and route the next one.
  void advance_vertex(std::int64_t job_id, int vertex) {
    JobState& job = jobs[job_id];
    const int si = ++job.seg_index[static_cast<std::size_t>(vertex)];
    auto& segs = job.segments[static_cast<std::size_t>(vertex)];
    if (si >= static_cast<int>(segs.size())) {
      vertex_complete(job_id, vertex);
      return;
    }
    const Segment& seg = segs[static_cast<std::size_t>(si)];
    job.seg_remaining[static_cast<std::size_t>(vertex)] = seg.length;
    if (seg.critical) {
      route_critical(job_id, vertex, seg.resource);
    } else {
      // Rule 4: after a request finishes the vertex re-enters RQ^N.
      rqn[static_cast<std::size_t>(job.task)].emplace_back(job_id, vertex);
    }
  }

  // ---- locking rules ------------------------------------------------------
  void issue_request(std::int64_t job_id, int vertex, ResourceId q) {
    JobState& job = jobs[job_id];
    if (!global_res[static_cast<std::size_t>(q)]) {
      // DPCP-p only: under kSpinFifo local requests are issued at dispatch
      // time (dispatch_request), never from here.
      assert(cfg.protocol == SimProtocol::kDpcpP);
      LocalResource& lr = local_res[q];
      if (!lr.locked) {
        // Rule 2: lock and become ready on RQ^L.
        lr.locked = true;
        lr.owner_job = job_id;
        lr.owner_vertex = vertex;
        record(TraceKind::kLocalLock, job.task, job_id, vertex, -1, q);
        rql[static_cast<std::size_t>(job.task)].emplace_back(job_id, vertex);
      } else {
        // Contended: the vertex suspends until FIFO wake-up (Rule 1).
        lr.waiters.emplace_back(job_id, vertex);
      }
      return;
    }

    // Rule 3: global resource -- the vertex suspends; the request goes to
    // the resource's synchronization processor.
    const ProcessorId target = part.processor_of_resource(q);
    assert(target != Partition::kUnassigned &&
           "global resource not placed on any processor");
    GlobalRequest req;
    req.id = static_cast<int>(requests.size());
    req.task = job.task;
    req.job = job_id;
    req.vertex = vertex;
    req.resource = q;
    req.proc = target;
    req.arrival = now;
    req.remaining =
        job.segments[static_cast<std::size_t>(vertex)]
            [static_cast<std::size_t>(
                 job.seg_index[static_cast<std::size_t>(vertex)])]
                .length;
    requests.push_back(req);
    ++result.global_requests_issued;
    Processor& p = procs[static_cast<std::size_t>(target)];
    p.live_requests.insert(req.id);
    record(TraceKind::kRequestIssue, job.task, job_id, vertex, target, q);

    // Lemma-1 bookkeeping: a lower-priority agent already executing here
    // blocks this request from its arrival.
    if (cfg.run_checkers && p.occ == Occupant::kAgent) {
      const GlobalRequest& running = requests[static_cast<std::size_t>(p.request)];
      if (ts.task(running.task).priority() < ts.task(req.task).priority())
        requests.back().lower_blockers.insert(running.id);
    }

    try_grant_on_arrival(req.id);
  }

  int processor_ceiling(const Processor& p) const {
    return p.locked_ceilings.empty() ? INT32_MIN : *p.locked_ceilings.rbegin();
  }

  void try_grant_on_arrival(int req_id) {
    GlobalRequest& req = requests[static_cast<std::size_t>(req_id)];
    Processor& p = procs[static_cast<std::size_t>(req.proc)];
    const int prio = ts.task(req.task).priority();
    const bool free = !global_locked[static_cast<std::size_t>(req.resource)];
    if (free && prio > processor_ceiling(p)) {
      grant(req_id);
    } else {
      p.suspended.insert({-prio, req.id, req.id});
    }
  }

  void grant(int req_id) {
    GlobalRequest& req = requests[static_cast<std::size_t>(req_id)];
    Processor& p = procs[static_cast<std::size_t>(req.proc)];
    assert(!req.granted);
    if (global_locked[static_cast<std::size_t>(req.resource)])
      ++result.mutual_exclusion_violations;
    if (cfg.run_checkers &&
        ts.task(req.task).priority() <= processor_ceiling(p))
      ++result.ceiling_violations;
    global_locked[static_cast<std::size_t>(req.resource)] = true;
    p.locked_ceilings.insert(
        ceiling_of[static_cast<std::size_t>(req.resource)]);
    req.granted = true;
    const int prio = ts.task(req.task).priority();
    p.ready_agents.insert({-prio, req.id, req.id});
    record(TraceKind::kRequestGrant, req.task, req.job, req.vertex, req.proc,
           req.resource);
  }

  void recheck_grants(ProcessorId proc) {
    Processor& p = procs[static_cast<std::size_t>(proc)];
    while (!p.suspended.empty()) {
      // Highest-priority suspended request whose resource is free.
      auto pick = p.suspended.end();
      for (auto it = p.suspended.begin(); it != p.suspended.end(); ++it) {
        const GlobalRequest& r =
            requests[static_cast<std::size_t>(std::get<2>(*it))];
        if (!global_locked[static_cast<std::size_t>(r.resource)]) {
          pick = it;
          break;
        }
      }
      if (pick == p.suspended.end()) return;
      const int req_id = std::get<2>(*pick);
      const GlobalRequest& r = requests[static_cast<std::size_t>(req_id)];
      if (ts.task(r.task).priority() <= processor_ceiling(p)) return;
      p.suspended.erase(pick);
      grant(req_id);
    }
  }

  void finish_request(int req_id) {
    GlobalRequest& req = requests[static_cast<std::size_t>(req_id)];
    Processor& p = procs[static_cast<std::size_t>(req.proc)];
    req.finished = true;
    ++result.global_requests_completed;
    global_locked[static_cast<std::size_t>(req.resource)] = false;
    auto it = p.locked_ceilings.find(
        ceiling_of[static_cast<std::size_t>(req.resource)]);
    assert(it != p.locked_ceilings.end());
    p.locked_ceilings.erase(it);
    p.live_requests.erase(req.id);
    record(TraceKind::kAgentComplete, req.task, req.job, req.vertex, req.proc,
           req.resource);

    if (cfg.run_checkers) {
      const int blockers = static_cast<int>(req.lower_blockers.size());
      result.max_lower_priority_blockers =
          std::max(result.max_lower_priority_blockers, blockers);
      if (blockers > 1) ++result.lemma1_violations;
    }

    recheck_grants(req.proc);
    advance_vertex(req.job, req.vertex);  // Rule 4
  }

  void release_local(ResourceId q, std::int64_t job_id, int vertex) {
    LocalResource& lr = local_res[q];
    assert(lr.locked && lr.owner_job == job_id && lr.owner_vertex == vertex);
    (void)job_id;
    (void)vertex;
    record(TraceKind::kLocalUnlock,
           jobs.count(job_id) ? jobs[job_id].task : -1, job_id, vertex, -1, q);
    if (lr.waiters.empty()) {
      lr.locked = false;
      lr.owner_job = -1;
      lr.owner_vertex = -1;
      return;
    }
    const auto [wjob, wvertex] = lr.waiters.front();
    lr.waiters.pop_front();
    lr.owner_job = wjob;
    lr.owner_vertex = wvertex;
    JobState& wj = jobs[wjob];
    record(TraceKind::kLocalLock, wj.task, wjob, wvertex, -1, q);
    if (cfg.protocol == SimProtocol::kSpinFifo) {
      // FIFO handoff.  Every waiter joined the queue when it started
      // spinning (acquire-on-dispatch), so the new owner is on a
      // processor right now and starts its critical section in place --
      // lock holders always make progress.
      const auto it = spinning_at.find(std::make_pair(wjob, wvertex));
      assert(it != spinning_at.end() &&
             "spin waiters always occupy a processor");
      const ProcessorId pid = it->second;
      spinning_at.erase(it);
      Processor& p = procs[static_cast<std::size_t>(pid)];
      assert(p.occ == Occupant::kSpinning && p.job == wjob &&
             p.vertex == wvertex);
      p.occ = Occupant::kIdle;
      p.token = 0;
      --running_vertices[static_cast<std::size_t>(wj.task)];
      dispatch_vertex(pid, wjob, wvertex);
    } else {
      rql[static_cast<std::size_t>(wj.task)].emplace_back(wjob, wvertex);
    }
  }

  /// kSpinFifo: a vertex whose critical segment reached the front of RQ^S
  /// got a processor -- issue the request *now*.  A free lock is taken and
  /// the critical section runs immediately; a held lock enqueues the
  /// request FIFO and the vertex busy-waits on this processor until the
  /// release hands over in place.
  void dispatch_request(ProcessorId pid, std::int64_t job_id, int vertex) {
    JobState& job = jobs[job_id];
    const Segment& seg =
        job.segments[static_cast<std::size_t>(vertex)][static_cast<std::size_t>(
            job.seg_index[static_cast<std::size_t>(vertex)])];
    assert(seg.critical);
    LocalResource& lr = local_res[seg.resource];
    if (!lr.locked) {
      lr.locked = true;
      lr.owner_job = job_id;
      lr.owner_vertex = vertex;
      record(TraceKind::kLocalLock, job.task, job_id, vertex, pid,
             seg.resource);
      dispatch_vertex(pid, job_id, vertex);
    } else {
      lr.waiters.emplace_back(job_id, vertex);
      dispatch_spin(pid, job_id, vertex);
    }
  }

  /// kSpinFifo: occupy a processor with a busy-waiting vertex.
  void dispatch_spin(ProcessorId pid, std::int64_t job_id, int vertex) {
    Processor& p = procs[static_cast<std::size_t>(pid)];
    JobState& job = jobs[job_id];
    ++running_vertices[static_cast<std::size_t>(job.task)];
    p.occ = Occupant::kSpinning;
    p.job = job_id;
    p.vertex = vertex;
    p.token = 0;  // no completion event: the lock release wakes it
    spinning_at[{job_id, vertex}] = pid;
    const Segment& seg =
        job.segments[static_cast<std::size_t>(vertex)][static_cast<std::size_t>(
            job.seg_index[static_cast<std::size_t>(vertex)])];
    record(TraceKind::kVertexDispatch, job.task, job_id, vertex, pid,
           seg.resource);
  }

  // ---- dispatching ---------------------------------------------------------
  void save_preempted(ProcessorId pid) {
    Processor& p = procs[static_cast<std::size_t>(pid)];
    if (p.occ == Occupant::kIdle) return;
    ++result.preemptions;
    if (p.occ == Occupant::kVertex) {
      JobState& job = jobs[p.job];
      // Remaining time of the in-flight segment.
      // (seg_remaining was set at dispatch; reduce by elapsed time.)
      Time& rem = job.seg_remaining[static_cast<std::size_t>(p.vertex)];
      rem -= now - dispatch_time_[static_cast<std::size_t>(pid)];
      assert(rem >= 0);
      const Segment& seg =
          job.segments[static_cast<std::size_t>(p.vertex)]
              [static_cast<std::size_t>(
                   job.seg_index[static_cast<std::size_t>(p.vertex)])];
      record(TraceKind::kVertexPreempt, job.task, p.job, p.vertex, pid,
             seg.critical ? seg.resource : -1);
      --running_vertices[static_cast<std::size_t>(job.task)];
      // Preempted vertices resume first: front of the matching ready queue.
      if (seg.critical)
        rql[static_cast<std::size_t>(job.task)].emplace_front(p.job, p.vertex);
      else
        rqn[static_cast<std::size_t>(job.task)].emplace_front(p.job, p.vertex);
    } else {
      GlobalRequest& req = requests[static_cast<std::size_t>(p.request)];
      req.remaining -= now - dispatch_time_[static_cast<std::size_t>(pid)];
      assert(req.remaining >= 0);
      record(TraceKind::kAgentPreempt, req.task, req.job, req.vertex, pid,
             req.resource);
      const int prio = ts.task(req.task).priority();
      p.ready_agents.insert({-prio, req.id, req.id});
    }
    p.occ = Occupant::kIdle;
    p.token = 0;
  }

  std::vector<Time> dispatch_time_;

  void dispatch_agent(ProcessorId pid, int req_id) {
    Processor& p = procs[static_cast<std::size_t>(pid)];
    GlobalRequest& req = requests[static_cast<std::size_t>(req_id)];
    p.occ = Occupant::kAgent;
    p.request = req_id;
    p.token = next_token++;
    dispatch_time_[static_cast<std::size_t>(pid)] = now;
    push_event(now + req.remaining, SimEventKind::kSegmentDone, pid, p.token);
    record(TraceKind::kAgentDispatch, req.task, req.job, req.vertex, pid,
           req.resource);
    // Lemma-1 bookkeeping: this agent blocks every pending higher-priority
    // request on this processor while it runs.
    if (cfg.run_checkers) {
      const int prio = ts.task(req.task).priority();
      for (int other_id : p.live_requests) {
        if (other_id == req_id) continue;
        GlobalRequest& other = requests[static_cast<std::size_t>(other_id)];
        if (!other.finished && ts.task(other.task).priority() > prio)
          other.lower_blockers.insert(req_id);
      }
    }
  }

  void dispatch_vertex(ProcessorId pid, std::int64_t job_id, int vertex) {
    Processor& p = procs[static_cast<std::size_t>(pid)];
    JobState& job = jobs[job_id];
    ++running_vertices[static_cast<std::size_t>(job.task)];
    p.occ = Occupant::kVertex;
    p.job = job_id;
    p.vertex = vertex;
    p.token = next_token++;
    dispatch_time_[static_cast<std::size_t>(pid)] = now;
    push_event(now + job.seg_remaining[static_cast<std::size_t>(vertex)],
               SimEventKind::kSegmentDone, pid, p.token);
    const Segment& seg =
        job.segments[static_cast<std::size_t>(vertex)][static_cast<std::size_t>(
            job.seg_index[static_cast<std::size_t>(vertex)])];
    record(TraceKind::kVertexDispatch, job.task, job_id, vertex, pid,
           seg.critical ? seg.resource : -1);
  }

  void reschedule() {
    // Pass 1: agents (effective priority above every base priority).
    for (ProcessorId pid = 0; pid < part.num_processors(); ++pid) {
      Processor& p = procs[static_cast<std::size_t>(pid)];
      if (p.ready_agents.empty()) continue;
      const auto top = *p.ready_agents.begin();
      const int top_prio = -std::get<0>(top);
      if (p.occ == Occupant::kAgent) {
        const GlobalRequest& running =
            requests[static_cast<std::size_t>(p.request)];
        if (ts.task(running.task).priority() >= top_prio) continue;
      }
      save_preempted(pid);
      p.ready_agents.erase(p.ready_agents.begin());
      dispatch_agent(pid, std::get<2>(top));
    }
    // Pass 2: vertices onto idle cluster processors (RQ^L before RQ^N).
    // Shared processors pick the highest-priority mapped task with ready
    // work; light tasks run at most one vertex at a time (Sec. VI).
    for (ProcessorId pid = 0; pid < part.num_processors(); ++pid) {
      Processor& p = procs[static_cast<std::size_t>(pid)];
      if (p.occ != Occupant::kIdle) continue;
      const int t = pick_ready_task(p, /*min_priority=*/INT32_MIN);
      if (t >= 0) dispatch_front(pid, t);
    }
    // Pass 3 (shared processors only): P-FP preemption -- a ready vertex of
    // a higher-priority co-located task preempts a running lower-priority
    // vertex.  Under FIFO spin locks a critical section is non-preemptable
    // (as is spinning, which never has occ == kVertex): preempting a lock
    // holder on a shared processor lets a higher-priority co-located
    // requester spin on the only processor the holder can run on --
    // deadlock.  MSRP-style protocols forbid exactly this; the SPIN-SON
    // analysis charges the symmetric cost as arrival blocking.
    for (ProcessorId pid = 0; pid < part.num_processors(); ++pid) {
      Processor& p = procs[static_cast<std::size_t>(pid)];
      if (p.occ != Occupant::kVertex || p.cluster_tasks.size() <= 1) continue;
      const JobState& running = jobs[p.job];
      if (cfg.protocol == SimProtocol::kSpinFifo &&
          running.segments[static_cast<std::size_t>(p.vertex)]
              [static_cast<std::size_t>(
                   running.seg_index[static_cast<std::size_t>(p.vertex)])]
                  .critical)
        continue;
      const int t = pick_ready_task(p, ts.task(running.task).priority());
      if (t >= 0) {
        save_preempted(pid);
        dispatch_front(pid, t);
      }
    }
    // Checker: work-conservation on dedicated (federated) clusters -- no
    // idle processor while the owning task has ready vertices.  Shared
    // light-task processors are priority-scheduled, not work-conserving
    // per task, so they are excluded.
    if (cfg.run_checkers) {
      for (int i = 0; i < ts.size(); ++i) {
        if (rql[static_cast<std::size_t>(i)].empty() &&
            rqs[static_cast<std::size_t>(i)].empty() &&
            rqn[static_cast<std::size_t>(i)].empty())
          continue;
        if (is_light[static_cast<std::size_t>(i)]) continue;
        for (ProcessorId pid : part.cluster(i)) {
          const Processor& p = procs[static_cast<std::size_t>(pid)];
          if (p.cluster_tasks.size() == 1 && p.occ == Occupant::kIdle)
            ++result.work_conserving_violations;
        }
      }
    }
  }

  /// Highest-priority task mapped to `p`, with priority above
  /// `min_priority`, that has dispatchable ready work.
  int pick_ready_task(const Processor& p, int min_priority) {
    for (int t : p.cluster_tasks) {  // sorted by decreasing priority
      if (ts.task(t).priority() <= min_priority) break;
      if (is_light[static_cast<std::size_t>(t)] &&
          running_vertices[static_cast<std::size_t>(t)] >= 1)
        continue;  // sequential: one vertex at a time
      if (!rql[static_cast<std::size_t>(t)].empty() ||
          !rqs[static_cast<std::size_t>(t)].empty() ||
          !rqn[static_cast<std::size_t>(t)].empty())
        return t;
    }
    return -1;
  }

  /// Dispatches the front of task t's ready queues onto pid: resource
  /// holders first (RQ^L), then spin-waiters (kSpinFifo), then RQ^N.
  void dispatch_front(ProcessorId pid, int t) {
    auto& ql = rql[static_cast<std::size_t>(t)];
    auto& qs = rqs[static_cast<std::size_t>(t)];
    auto& qn = rqn[static_cast<std::size_t>(t)];
    if (!ql.empty()) {
      const auto [job_id, vertex] = ql.front();
      ql.pop_front();
      dispatch_vertex(pid, job_id, vertex);
    } else if (!qs.empty()) {
      const auto [job_id, vertex] = qs.front();
      qs.pop_front();
      dispatch_request(pid, job_id, vertex);
    } else {
      const auto [job_id, vertex] = qn.front();
      qn.pop_front();
      dispatch_vertex(pid, job_id, vertex);
    }
  }

  void handle_segment_done(ProcessorId pid, std::uint64_t token) {
    Processor& p = procs[static_cast<std::size_t>(pid)];
    if (p.occ == Occupant::kIdle || p.token != token) return;  // stale
    if (p.occ == Occupant::kVertex) {
      const std::int64_t job_id = p.job;
      const int vertex = p.vertex;
      p.occ = Occupant::kIdle;
      p.token = 0;
      JobState& job = jobs[job_id];
      --running_vertices[static_cast<std::size_t>(job.task)];
      const Segment& seg =
          job.segments[static_cast<std::size_t>(vertex)]
              [static_cast<std::size_t>(
                   job.seg_index[static_cast<std::size_t>(vertex)])];
      // Per-segment processor vacate: kVertexComplete fires once per
      // vertex with no processor, so this is the only record tying a
      // run-to-completion exit to its processor (span reconstruction in
      // obs/chrome_trace needs every occupancy to close explicitly).
      record(TraceKind::kSegmentEnd, job.task, job_id, vertex, pid,
             seg.critical ? seg.resource : -1);
      if (seg.critical) release_local(seg.resource, job_id, vertex);
      advance_vertex(job_id, vertex);
    } else {
      const int req_id = p.request;
      p.occ = Occupant::kIdle;
      p.token = 0;
      finish_request(req_id);
    }
  }

  SimResult run() {
    dispatch_time_.assign(static_cast<std::size_t>(part.num_processors()), 0);
    for (int i = 0; i < ts.size(); ++i)
      push_event(0, SimEventKind::kJobRelease, i);

    const bool truncated = cfg.backend == SimBackend::kQuantum
                               ? run_quantum()
                               : run_event();
    result.end_time = now;
    result.drained = truncated ? false : jobs.empty();
    finalize();
    return result;
  }

  /// kEvent driver: jump the clock straight to the next pending event.
  /// Returns true when the run was truncated by `hard_stop`.
  bool run_event() {
    while (!events.empty()) {
      if (events.next_time() > cfg.hard_stop) return true;
      ++result.clock_advances;
      process_event(events.pop());
    }
    return false;
  }

  /// kQuantum driver: walk the clock densely one quantum at a time,
  /// polling every processor each tick; due events still fire at their
  /// exact timestamps, so the protocol machine sees the identical
  /// sequence of (time, event) pairs as under run_event().
  bool run_quantum() {
    if (cfg.quantum <= 0)
      throw std::invalid_argument(
          "SimConfig::quantum must be positive for the quantum backend");
    Time clock = 0;
    while (!events.empty()) {
      const Time due = events.next_time();
      if (due > cfg.hard_stop) return true;
      while (clock < due) {
        clock = std::min<Time>(clock + cfg.quantum, due);
        ++result.clock_advances;
        for (const Processor& p : procs)
          result.processor_polls += (p.occ != Occupant::kIdle);
      }
      process_event(events.pop());
    }
    return false;
  }

  void process_event(const SimEvent& e) {
    ++result.events_processed;
    if (cfg.max_events > 0 && result.events_processed > cfg.max_events)
      throw std::runtime_error(
          "simulator progress guard tripped: more than " +
          std::to_string(cfg.max_events) +
          " events processed (simulated time " + std::to_string(e.time) +
          " ns, backend " + sim_backend_name(cfg.backend) +
          ") -- the protocol machine is scheduling events without "
          "retiring workload");
    now = e.time;
    switch (e.kind) {
      case SimEventKind::kJobRelease:
        release_job(e.subject);
        break;
      case SimEventKind::kSegmentDone:
        handle_segment_done(e.subject, e.token);
        break;
    }
    reschedule();
  }

  void finalize() {
    for (int i = 0; i < ts.size(); ++i) {
      auto& st = result.task[static_cast<std::size_t>(i)];
      if (st.jobs_completed > 0)
        st.avg_response = static_cast<double>(
                              response_sum[static_cast<std::size_t>(i)]) /
                          static_cast<double>(st.jobs_completed);
    }
  }
};

Simulator::Simulator(const TaskSet& ts, const Partition& part,
                     SimConfig config)
    : ts_(ts), part_(part), config_(config) {}

SimResult Simulator::run() {
  if (ran_)
    throw std::logic_error(
        "Simulator::run() is single-shot: construct a new Simulator per "
        "run (a rerun would append to the already-filled trace)");
  ran_ = true;
  Impl impl(ts_, part_, config_, trace_);
  return impl.run();
}

SimResult simulate(const TaskSet& ts, const Partition& part,
                   const SimConfig& config) {
  Simulator sim(ts, part, config);
  return sim.run();
}

}  // namespace dpcp
