// Discrete-event simulator of the DPCP-p runtime (Sec. III of the paper).
//
// Implements the protocol exactly as specified:
//  * federated clusters with work-conserving FIFO scheduling of vertices
//    (ready queues RQ^N and RQ^L per task, RQ^L served first -- Sec. III-B);
//  * every global resource pinned to a processor, where an agent executes
//    its critical sections at effective priority pi^H + pi_i, preempting
//    vertices and lower-priority agents (RQ^G / SQ^G per processor);
//  * the priority-ceiling gate: a request is granted the lock at time t
//    only if its effective priority exceeds the processor ceiling (locking
//    rules 1-4 of Sec. III-C);
//  * local resources as plain binary semaphores with FIFO wake-up.
//
// Built-in checkers validate Lemma 1 (a request is blocked by at most one
// lower-priority request), mutual exclusion, the ceiling gate and
// work-conservation on every run.
//
// One protocol state machine, two clock drivers (SimConfig::backend): the
// default event backend jumps the clock between entries of the global
// EventQueue (sim/event_queue.hpp); the legacy quantum backend walks the
// clock densely one quantum at a time, firing the same events at the same
// timestamps.  Results are identical by construction; only SimResult's
// clock_advances / processor_polls throughput counters differ.
#pragma once

#include <vector>

#include "model/taskset.hpp"
#include "partition/partition.hpp"
#include "sim/config.hpp"
#include "sim/segments.hpp"

namespace dpcp {

class Simulator {
 public:
  /// `part` must dedicate at least one processor to every task and place
  /// every global resource on a processor.
  Simulator(const TaskSet& ts, const Partition& part, SimConfig config);

  /// Runs to completion and returns the collected statistics.
  ///
  /// Single-shot contract (enforced): a Simulator instance may run() at
  /// most once — a second call throws std::logic_error instead of
  /// silently operating on stale state (historically it reused the
  /// already-filled trace buffer, so back-to-back runs accumulated each
  /// other's events).  Construct a new Simulator per run.
  SimResult run();

  /// Valid after run() when config.record_trace was set.
  const std::vector<TraceEvent>& trace() const { return trace_; }

 private:
  struct Impl;
  const TaskSet& ts_;
  const Partition& part_;
  SimConfig config_;
  std::vector<TraceEvent> trace_;
  bool ran_ = false;
};

/// Convenience: simulate `ts` under `part` with default worst-case settings
/// and return the result.
SimResult simulate(const TaskSet& ts, const Partition& part,
                   const SimConfig& config = {});

}  // namespace dpcp
