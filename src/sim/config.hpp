// Configuration, statistics and trace records of the DPCP-p runtime
// simulator (Sec. III of the paper).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace dpcp {

/// How the simulator advances its clock.  Both backends drain the same
/// global EventQueue (sim/event_queue.hpp) through the same protocol state
/// machine, so they are behavior-identical by construction — the
/// differential suite (tests/test_sim_diff.cpp) pins this.
enum class SimBackend {
  /// Next-event clock: jump straight to the earliest pending event and
  /// skip idle time entirely.  The default, and the fast path that makes
  /// --sim/--validate sweeps scale (see bench/bench_sim.cpp).
  kEvent,
  /// Dense per-quantum clock: walk the clock one `quantum` at a time,
  /// polling every processor each tick, and fire due events at their
  /// exact timestamps.  The legacy reference backend — kept co-resident
  /// so the event core stays differentially testable against it.
  kQuantum,
};

/// "event" / "quantum" (the --sim-backend CLI tokens).
const char* sim_backend_name(SimBackend backend);
/// Inverse of sim_backend_name(); nullopt on any other string.
std::optional<SimBackend> parse_sim_backend(const std::string& token);

/// Which locking protocol the simulator executes.
enum class SimProtocol {
  /// DPCP-p (Sec. III): global resources served remotely by
  /// priority-ceiling agents on their synchronization processors.
  kDpcpP,
  /// FIFO spin locks, local execution (the runtime SPIN-SON models): a
  /// vertex issues its request when dispatched and busy-waits on that
  /// processor until the lock is free (the FIFO queue position is taken
  /// at spin start, never earlier), then runs the critical section itself
  /// in place.  Spinning and critical sections are non-preemptable, as in
  /// MSRP-style protocols -- preempting a lock holder on a shared
  /// processor would deadlock against a co-located spinner.  No resource
  /// placement is needed.
  kSpinFifo,
};

struct SimConfig {
  SimProtocol protocol = SimProtocol::kDpcpP;
  /// Clock-advance backend; behavior-identical by construction (see
  /// SimBackend), so flipping it may only change runtime, never results.
  SimBackend backend = SimBackend::kEvent;
  /// Tick length of the kQuantum backend (must be positive there; the
  /// kEvent backend ignores it).  1 us resolves the scenario grid's
  /// shortest critical sections (15 us) with reasonable fidelity; events
  /// still fire at their exact (ns) timestamps regardless.
  Time quantum = micros(1);
  /// Progress guard on both backends: processing more events than this
  /// throws std::runtime_error instead of spinning forever — a protocol
  /// bug that schedules events without retiring workload (the class of
  /// failure behind the PR 3 FIFO-spin deadlock) must surface as an
  /// error, not a hang.  0 disables the guard.  The default is far above
  /// any legitimate run (a 100 ms-horizon sweep sample processes ~1e3
  /// events).
  std::int64_t max_events = 100'000'000;
  /// Simulated time span.  Jobs released before the horizon run to
  /// completion (events past the horizon are still processed until the
  /// system drains or `hard_stop` is hit).
  Time horizon = millis(2000);
  /// Absolute event-time cutoff (guards against runaway scenarios).
  Time hard_stop = millis(20'000);
  /// Synchronous release at t=0, then strictly periodic arrivals.  A
  /// positive jitter makes arrivals sporadic: next = prev + T + U[0,jitter].
  Time release_jitter = 0;
  /// Scales every execution segment (0 < scale <= 1): exercises
  /// shorter-than-worst-case executions, under which analysis bounds must
  /// still hold.
  double execution_scale = 1.0;
  /// Seed for jitter / scaling randomisation.
  std::uint64_t seed = 1;
  /// Record a full event trace (costly; for tests and examples).
  bool record_trace = false;
  /// Memory guard on the recorded trace, mirroring `max_events`:
  /// recording more than this many entries throws std::runtime_error
  /// with a descriptive message instead of growing without bound (long
  /// horizons with record_trace on are exactly the exporter's use case).
  /// 0 = unlimited (the default; record_trace already defaults off).
  std::int64_t max_trace_entries = 0;
  /// Run the runtime invariant checkers (Lemma 1, mutual exclusion,
  /// work-conservation) during simulation.
  bool run_checkers = true;
};

struct TaskSimStats {
  std::int64_t jobs_released = 0;
  std::int64_t jobs_completed = 0;
  std::int64_t deadline_misses = 0;
  Time max_response = 0;
  double avg_response = 0.0;  // over completed jobs
};

struct SimResult {
  std::vector<TaskSimStats> task;
  /// Distinct lower-priority requests observed blocking a single global
  /// request, maximised over all requests (Lemma 1 asserts <= 1).
  int max_lower_priority_blockers = 0;
  std::int64_t lemma1_violations = 0;
  std::int64_t mutual_exclusion_violations = 0;
  std::int64_t work_conserving_violations = 0;
  std::int64_t ceiling_violations = 0;
  std::int64_t global_requests_issued = 0;
  std::int64_t global_requests_completed = 0;
  std::int64_t preemptions = 0;
  /// Events retired from the global queue.  A pure function of the run's
  /// behaviour, so identical across backends (the differential suite
  /// asserts this).
  std::int64_t events_processed = 0;
  /// Scheduler wake-ups: one per event under kEvent (the clock jumps),
  /// one per tick under kQuantum (the clock walks).  The ratio between
  /// backends is the idle time the event core skips.
  std::int64_t clock_advances = 0;
  /// kQuantum only: per-tick processor-occupancy polls (the dense loop's
  /// cost model); always 0 under kEvent.
  std::int64_t processor_polls = 0;
  Time end_time = 0;
  bool drained = false;  // every released job completed

  bool all_invariants_hold() const {
    return lemma1_violations == 0 && mutual_exclusion_violations == 0 &&
           work_conserving_violations == 0 && ceiling_violations == 0;
  }
  std::int64_t total_deadline_misses() const {
    std::int64_t total = 0;
    for (const auto& t : task) total += t.deadline_misses;
    return total;
  }
};

enum class TraceKind {
  kJobRelease,
  kJobComplete,
  kVertexDispatch,   // vertex starts/resumes on a processor
  kVertexPreempt,
  kVertexComplete,
  /// A vertex segment ran to completion and vacated its processor (the
  /// only proc-carrying exit besides preemption — kVertexComplete fires
  /// once per vertex with no processor, so span reconstruction needs
  /// this per-segment close; obs/chrome_trace.hpp consumes it).
  kSegmentEnd,
  kRequestIssue,     // global request arrives at its synchronization proc
  kRequestGrant,     // lock granted (enters RQ^G)
  kAgentDispatch,    // agent starts/resumes executing
  kAgentComplete,    // critical section finished, lock released
  kAgentPreempt,     // running agent preempted by a higher-priority one
  kLocalLock,
  kLocalUnlock,
};

struct TraceEvent {
  Time time = 0;
  TraceKind kind = TraceKind::kJobRelease;
  int task = -1;
  std::int64_t job = -1;
  int vertex = -1;
  int processor = -1;
  int resource = -1;
};

std::string trace_kind_name(TraceKind kind);
std::string trace_to_string(const std::vector<TraceEvent>& trace);

}  // namespace dpcp
